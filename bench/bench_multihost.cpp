// EXT-MULTIHOST — Sharded scheduling beyond the single-host bottleneck.
//
// The paper dedicates ONE processor to scheduling; our bottleneck analysis
// (EXPERIMENTS.md, FIG5) shows scheduling throughput capping compliance as
// m grows. This bench scales the machine to m = 8..32 workers and compares
// 1, 2 and 4 scheduling hosts, each running RT-SADS over its shard of the
// workers (tasks routed by affinity).
//
// Expected shape: all shard counts agree at small m; as m grows the
// single host saturates while sharded configurations keep climbing —
// scheduling capacity, not worker capacity, is the high-end limit.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "exp/table.h"
#include "sched/partitioned.h"
#include "sched/quantum.h"
#include "tasks/workload.h"

namespace {

using namespace rtds;
using rtds::bench::make_algo;

double mean_hit(std::uint32_t shards, std::uint32_t workers,
                std::uint32_t reps) {
  const auto algo = make_algo("rt_sads");
  const auto quantum =
      sched::make_self_adjusting_quantum(usec(100), msec(20));
  RunningStats s;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    tasks::WorkloadConfig wc;
    wc.num_tasks = 2000;
    wc.num_processors = workers;
    wc.processing_min = msec(1);
    wc.processing_max = msec(5);
    wc.affinity_degree = 0.2;
    wc.laxity_min = 8.0;
    wc.laxity_max = 15.0;
    Xoshiro256ss rng(bench::bench_seed("multihost", rep));
    const auto wl = tasks::generate_workload(wc, rng);

    sched::PartitionedConfig cfg;
    cfg.num_shards = shards;
    cfg.total_workers = workers;
    cfg.comm_cost = msec(3);
    cfg.driver.vertex_generation_cost = usec(2);
    cfg.driver.phase_overhead = usec(50);
    const sched::PartitionedMetrics m =
        sched::run_partitioned(*algo, *quantum, cfg, wl);
    s.add(m.hit_ratio());
  }
  return s.mean() * 100.0;
}

}  // namespace

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("EXT-MULTIHOST — 1 vs 2 vs 4 scheduling hosts",
               "extension: past the single-host throughput cap of Sec. 5",
               "curves agree at small m; only sharded configs keep rising");

  exp::TextTable table({"workers", "1 host hit%", "2 hosts hit%",
                        "4 hosts hit%"});
  for (std::uint32_t m : {8u, 16u, 24u, 32u}) {
    table.add_row({std::to_string(m), exp::fmt(mean_hit(1, m, 5), 1),
                   exp::fmt(mean_hit(2, m, 5), 1),
                   exp::fmt(mean_hit(4, m, 5), 1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
