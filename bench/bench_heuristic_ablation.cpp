// ABL-H — Heuristic & cost-function ablation (Secs. 3, 4.4).
//
// Dissects where RT-SADS's advantage comes from on the headline cell
// (m=10, R=30%, SF=1):
//   * the load-balancing cost function CE (Sec. 4.4) vs plain greedy
//     processor orders;
//   * the EDF task-selection heuristic vs batch order;
//   * skipping unplaceable tasks vs the strict expansion rule;
// and for D-COLS:
//   * processor skipping vs strict round-robin;
//   * "limited backtracking" successor caps (Sec. 3's pruning).
#include <iostream>

#include "bench_util.h"
#include "exp/table.h"
#include "sched/algorithm.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;
  using search::Representation;
  using search::SearchConfig;
  using search::TaskOrder;

  print_header("ABL-H — heuristic and cost-function ablations",
               "Secs. 3 and 4.4 design choices on the Figure-5 headline cell",
               "full RT-SADS on top; each removed mechanism costs compliance");

  exp::ExperimentConfig base;
  base.num_workers = 10;
  base.replication_rate = 0.3;
  base.scaling_factor = 1.0;
  base.num_transactions = 1000;
  base.repetitions = 10;

  exp::TextTable table(
      {"variant", "hit%", "±ci", "dead-ends/run", "backtracks/phase"});
  const auto run_with = [&](const sched::PhaseAlgorithm& algo) {
    const exp::Aggregate a = exp::run_repeated(base, algo);
    table.add_row({algo.name(), exp::fmt(a.hit_ratio.mean() * 100, 1),
                   exp::fmt(confidence_interval(a.hit_ratio) * 100, 1),
                   exp::fmt(a.dead_ends.mean(), 0),
                   exp::fmt(a.backtracks_per_phase.mean(), 2)});
  };

  // --- RT-SADS family -------------------------------------------------------
  run_with(*make_algo("rt_sads"));
  run_with(*make_algo("rt_sads?cost=off"));
  run_with(*make_algo("rt_sads?cost=off&order=min_comm"));
  run_with(*make_algo("rt_sads?cost=off&order=index"));
  {
    SearchConfig cfg;
    cfg.representation = Representation::kAssignmentOriented;
    cfg.task_order = TaskOrder::kBatchOrder;
    const sched::TreeSearchAlgorithm algo("RT-SADS/batch-order", cfg);
    run_with(algo);
  }
  {
    SearchConfig cfg;
    cfg.representation = Representation::kAssignmentOriented;
    cfg.task_order = TaskOrder::kMinSlack;
    const sched::TreeSearchAlgorithm algo("RT-SADS/min-slack", cfg);
    run_with(algo);
  }
  {
    SearchConfig cfg;
    cfg.representation = Representation::kAssignmentOriented;
    cfg.skip_unplaceable_tasks = false;
    const sched::TreeSearchAlgorithm algo("RT-SADS/strict-expand", cfg);
    run_with(algo);
  }

  // --- D-COLS family --------------------------------------------------------
  run_with(*make_algo("d_cols"));
  {
    SearchConfig cfg;
    cfg.representation = Representation::kSequenceOriented;
    cfg.use_load_balance_cost = false;
    cfg.skip_saturated_processors = false;
    const sched::TreeSearchAlgorithm algo("D-COLS/strict-rr", cfg);
    run_with(algo);
  }
  run_with(*make_algo("d_cols?level_order=least_loaded"));
  run_with(*make_algo("d_cols?max_successors=4"));
  run_with(*make_algo("d_cols?max_successors=16"));
  {
    // Sequence-oriented but WITH the CE cost function: how much of the gap
    // is representation vs cost model.
    SearchConfig cfg;
    cfg.representation = Representation::kSequenceOriented;
    cfg.use_load_balance_cost = true;
    const sched::TreeSearchAlgorithm algo("D-COLS/+cost-fn", cfg);
    run_with(algo);
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
