// EXT-LOAD — Steady-state offered-load sweep (extension).
//
// The paper evaluates one extreme: 1000 transactions in a single burst.
// This bench runs the complementary steady-state experiment: Poisson
// arrivals at increasing offered load (fraction of the machine's capacity),
// on a synthetic workload with the paper's affinity and laxity structure.
//
// Expected shape: both schedulers hold near-100% compliance at low load;
// D-COLS's knee arrives much earlier because its scheduling cost per task
// scales with the backlog — exactly the paper's scalability argument, seen
// from the load axis instead of the processor axis.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "exp/table.h"
#include "machine/cluster.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sim/simulator.h"
#include "tasks/workload.h"

namespace {

using namespace rtds;

double mean_hit(const sched::PhaseAlgorithm& algo, double offered_load,
                std::uint32_t workers, std::uint32_t reps) {
  RunningStats s;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    machine::Cluster cluster(
        workers, machine::Interconnect::cut_through(workers, msec(2)));
    sim::Simulator sim;
    const auto quantum =
        sched::make_self_adjusting_quantum(usec(100), msec(20));

    tasks::WorkloadConfig wc;
    wc.num_tasks = 600;
    wc.num_processors = workers;
    wc.arrival = tasks::ArrivalPattern::kPoisson;
    // Offered load rho = mean_processing / (m * mean_interarrival).
    const double mean_proc_us = 3000.0;  // uniform [1,5]ms
    wc.processing_min = msec(1);
    wc.processing_max = msec(5);
    wc.mean_interarrival = SimDuration{std::int64_t(
        mean_proc_us / (offered_load * double(workers)))};
    wc.affinity_degree = 0.3;
    wc.laxity_min = 5.0;
    wc.laxity_max = 15.0;
    Xoshiro256ss rng(bench::bench_seed("offered-load", rep));
    const auto wl = tasks::generate_workload(wc, rng);

    sched::PipelineConfig dc;
    dc.vertex_generation_cost = usec(2);
    dc.phase_overhead = usec(50);
    const sched::PhasePipeline pipeline(algo, *quantum, dc);
    sched::SimBackend backend(cluster, sim);
    s.add(pipeline.run(wl, backend).hit_ratio());
  }
  return s.mean() * 100.0;
}

}  // namespace

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("EXT-LOAD — compliance vs offered load (steady state)",
               "extension of Sec. 5: Poisson arrivals instead of one burst",
               "both near 100% at low load; D-COLS's knee comes far earlier");

  const auto rt_sads = make_algo("rt_sads");
  const auto d_cols = make_algo("d_cols");

  exp::TextTable table({"offered load", "RT-SADS hit%", "D-COLS hit%"});
  for (double rho : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
    table.add_row({exp::fmt(rho, 1),
                   exp::fmt(mean_hit(*rt_sads, rho, 8, 5), 1),
                   exp::fmt(mean_hit(*d_cols, rho, 8, 5), 1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
