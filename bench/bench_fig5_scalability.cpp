// FIG5 — Deadline scalability performance (paper Figure 5).
//
// Protocol (Sec. 5.1): 1000 transactions in one burst, R = 30%, SF = 1,
// m = 2..10 workers, 10 repetitions per cell, means plotted, two-tailed
// difference-of-means at the 0.01 significance level.
//
// Paper's finding: RT-SADS keeps increasing deadline compliance as
// processors are added; D-COLS does not scale up under tight deadlines;
// the gap grows with m.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("FIG5 — deadline-compliance scalability vs processor count",
               "Figure 5 (R=30%, SF=1, 1000 bursty transactions)",
               "RT-SADS rises with m; D-COLS stays nearly flat; gap widens");

  const auto rt_sads = make_algo("rt_sads");
  const auto d_cols = make_algo("d_cols");

  Series rt{"RT-SADS", {}};
  Series dc{"D-COLS", {}};
  std::vector<std::string> xs;
  for (std::uint32_t m = 2; m <= 10; m += 2) {
    exp::ExperimentConfig cfg;
    cfg.num_workers = m;
    cfg.replication_rate = 0.3;
    cfg.scaling_factor = 1.0;
    cfg.num_transactions = 1000;
    cfg.repetitions = 10;
    xs.push_back(std::to_string(m));
    rt.points.push_back(exp::run_repeated(cfg, *rt_sads));
    dc.points.push_back(exp::run_repeated(cfg, *d_cols));
  }

  print_hit_ratio_table("processors", xs, {rt, dc});
  print_welch({rt, dc}, xs.size() - 1, "m=10");

  // Scalability digest: compliance gained per added pair of processors.
  const double rt_gain = rt.points.back().hit_ratio.mean() -
                         rt.points.front().hit_ratio.mean();
  const double dc_gain = dc.points.back().hit_ratio.mean() -
                         dc.points.front().hit_ratio.mean();
  std::cout << "Compliance gained from m=2 to m=10: RT-SADS +"
            << exp::fmt(rt_gain * 100, 1) << "pp, D-COLS +"
            << exp::fmt(dc_gain * 100, 1) << "pp\n";
  const double rel =
      dc.points.back().hit_ratio.mean() > 0
          ? rt.points.back().hit_ratio.mean() /
                dc.points.back().hit_ratio.mean()
          : 0.0;
  std::cout << "RT-SADS / D-COLS at m=10: " << exp::fmt(rel, 2)
            << "x (paper: RT-SADS outperforms by as much as 60% as m grows)\n";
  return 0;
}
