// Shared helpers for the figure/table benchmark binaries.
//
// Every bench prints (1) a fixed-width table mirroring the paper's series,
// with mean ± 99% confidence half-width over the repeated runs, and (2) a
// CSV block for plotting. Benches are plain executables (google-benchmark
// is used by the micro benches); each runs in seconds.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/experiment.h"
#include "exp/table.h"
#include "sched/registry.h"

namespace rtds::bench {

/// Builds a portfolio member from its registry spec — the ONE way benches
/// construct algorithms, so every bench accepts the same spec strings as
/// rtds_fuzz --algo and the tournament, and a spec typo fails loudly at
/// startup instead of silently benchmarking the wrong configuration.
inline std::unique_ptr<sched::PhaseAlgorithm> make_algo(
    const std::string& spec) {
  return sched::AlgorithmRegistry::builtin().make(spec);
}

/// Workload seed for repetition `rep` of the named bench: a named rng
/// substream off `base` (common/rng.h). All benches derive their seeds
/// here — one convention instead of per-bench magic base-seed constants —
/// and distinct names guarantee distinct streams even off the same base.
inline std::uint64_t bench_seed(std::uint64_t base, const char* bench_name,
                                std::uint64_t rep) {
  return derive_seed(base, stream_id(bench_name), rep);
}

/// bench_seed() off the shared experiment default base seed, for benches
/// that take no ExperimentConfig.
inline std::uint64_t bench_seed(const char* bench_name, std::uint64_t rep) {
  return bench_seed(exp::ExperimentConfig{}.base_seed, bench_name, rep);
}

/// One algorithm column of a figure: a display name plus its aggregate.
struct Series {
  std::string name;
  std::vector<exp::Aggregate> points;
};

/// Prints the standard bench header.
inline void print_header(const std::string& title,
                         const std::string& paper_ref,
                         const std::string& expectation) {
  std::cout << "==============================================================="
               "=\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Expected shape: " << expectation << "\n"
            << "==============================================================="
               "=\n";
}

/// Prints hit-ratio series over an x-axis: one row per x value, one column
/// pair (mean ± ci) per algorithm; then the CSV block.
inline void print_hit_ratio_table(const std::string& x_name,
                                  const std::vector<std::string>& x_values,
                                  const std::vector<Series>& series) {
  std::vector<std::string> header{x_name};
  for (const Series& s : series) {
    header.push_back(s.name + " hit%");
    header.push_back("±99%ci");
  }
  exp::TextTable table(header);
  for (std::size_t i = 0; i < x_values.size(); ++i) {
    std::vector<std::string> row{x_values[i]};
    for (const Series& s : series) {
      const auto& agg = s.points[i];
      row.push_back(exp::fmt(agg.hit_ratio.mean() * 100.0, 1));
      row.push_back(exp::fmt(confidence_interval(agg.hit_ratio) * 100.0, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

/// Prints the paper's difference-of-means protocol between the first two
/// series at the given point index.
inline void print_welch(const std::vector<Series>& series, std::size_t index,
                        const std::string& where) {
  if (series.size() < 2) return;
  const WelchResult w =
      exp::compare_hit_ratios(series[0].points[index], series[1].points[index]);
  std::cout << "Two-tailed Welch difference-of-means at " << where << ": t="
            << exp::fmt(w.t_statistic, 2)
            << ", df=" << exp::fmt(w.degrees_of_freedom, 1)
            << ", p=" << exp::fmt(w.p_value, 6)
            << (w.significant(0.01) ? "  (significant at the paper's 0.01 level)"
                                    : "  (NOT significant at 0.01)")
            << "\n\n";
}

}  // namespace rtds::bench
