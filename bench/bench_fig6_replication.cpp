// FIG6 — Deadline compliance under varying replication rate (paper Fig. 6).
//
// Protocol (Sec. 5.1): m = 10 workers, SF = 1, replication rate R from 10%
// to 100%, 10 repetitions per cell.
//
// Paper's finding: D-COLS improves as R grows (with replicated data,
// processor selection matters less); RT-SADS maintains a large lead
// throughout thanks to its load-balancing cost function.
#include <iostream>

#include "bench_util.h"
#include "exp/table.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("FIG6 — deadline compliance vs database replication rate",
               "Figure 6 (P=10, SF=1, 1000 bursty transactions)",
               "both rise with R; D-COLS gains more; RT-SADS stays ahead");

  const auto rt_sads = make_algo("rt_sads");
  const auto d_cols = make_algo("d_cols");

  Series rt{"RT-SADS", {}};
  Series dc{"D-COLS", {}};
  std::vector<std::string> xs;
  for (int pct = 10; pct <= 100; pct += 10) {
    exp::ExperimentConfig cfg;
    cfg.num_workers = 10;
    cfg.replication_rate = double(pct) / 100.0;
    cfg.scaling_factor = 1.0;
    cfg.num_transactions = 1000;
    cfg.repetitions = 10;
    xs.push_back(std::to_string(pct) + "%");
    rt.points.push_back(exp::run_repeated(cfg, *rt_sads));
    dc.points.push_back(exp::run_repeated(cfg, *d_cols));
  }

  print_hit_ratio_table("replication", xs, {rt, dc});
  print_welch({rt, dc}, 0, "R=10%");
  print_welch({rt, dc}, xs.size() - 1, "R=100%");

  const double dc_gain = dc.points.back().hit_ratio.mean() -
                         dc.points.front().hit_ratio.mean();
  const double rt_gain = rt.points.back().hit_ratio.mean() -
                         rt.points.front().hit_ratio.mean();
  std::cout << "Gain from R=10% to R=100%: D-COLS +"
            << exp::fmt(dc_gain * 100, 1) << "pp, RT-SADS +"
            << exp::fmt(rt_gain * 100, 1) << "pp\n";
  return 0;
}
