// Streaming service-mode bench: schedule-latency tails and the maximum
// sustainable arrival rate of the open-system pipeline.
//
//   bench_streaming [--quick] [--tasks N] [--workers M] [--out PATH]
//
// Drives PhasePipeline::run_stream with a Poisson ArrivalSource (the classic
// open service-system model) at a ladder of offered rates, per algorithm
// spec. Two questions a closed-workload figure cannot answer:
//
//   1. Latency tails: at a comfortably sustainable reference rate, what are
//      the p50/p99/p999 of schedule latency (arrival -> delivery acceptance)?
//   2. Capacity: ramp the offered rate until the deadline-hit ratio drops
//      below 95% — the highest rate still above the bar is the max
//      sustainable rate, the open-system analogue of the paper's "scheduling
//      capacity binds" regime (Sec. 5).
//
// Everything runs on the DES backend with a fixed derived seed, so the
// numbers (and BENCH_STREAMING.json, uploaded by the release-fast CI job)
// are bit-identical across machines and runs.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "machine/cluster.h"
#include "machine/interconnect.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sched/quantum.h"
#include "sim/simulator.h"
#include "tasks/arrival_source.h"

namespace {

using namespace rtds;

constexpr double kSustainableHitPct = 95.0;

/// One streaming run at one offered rate.
struct RatePoint {
  double rate_per_sec{0.0};
  std::int64_t gap_us{0};
  double hit_pct{0.0};
  std::uint64_t admission_rejected{0};
  std::uint64_t samples{0};
  double p50_us{0.0};
  double p99_us{0.0};
  double p999_us{0.0};
};

struct AlgoOutcome {
  std::string spec;
  RatePoint reference;        ///< latency tails at the reference rate
  std::vector<RatePoint> ramp;
  double max_sustainable_rate{0.0};  ///< 0 when no ramp rate met the bar
};

RatePoint run_at_gap(const sched::PhaseAlgorithm& algo, std::int64_t gap_us,
                     std::uint32_t workers, std::uint32_t tasks,
                     std::size_t max_pending) {
  const auto quantum = sched::make_self_adjusting_quantum();
  const sched::PhasePipeline pipeline(algo, *quantum);

  machine::Cluster cluster(workers,
                           machine::Interconnect::cut_through(workers, usec(50)));
  sim::Simulator simulator;
  sched::SimBackend backend(cluster, simulator);

  tasks::StreamConfig cfg;
  // One substream per offered rate: the ramp points are independent draws,
  // but every (spec, rate) cell replays identically run to run.
  cfg.seed = bench::bench_seed("bench_streaming", std::uint64_t(gap_us));
  cfg.max_tasks = tasks;
  cfg.body.num_processors = workers;
  tasks::PoissonArrivalSource source(cfg, usec(gap_us));

  sched::StreamOptions opts;
  opts.max_pending = max_pending;
  opts.latency_hi_us = 5.0e5;  // 500 ms window, 500 us buckets
  opts.latency_buckets = 1000;
  sched::StreamStats stats(opts);
  const sched::RunMetrics m = pipeline.run_stream(source, backend, opts, &stats);

  RatePoint p;
  p.gap_us = gap_us;
  p.rate_per_sec = 1.0e6 / double(gap_us);
  p.hit_pct = m.hit_ratio() * 100.0;
  p.admission_rejected = m.admission_rejected;
  p.samples = stats.schedule_latency.count();
  if (p.samples > 0) {
    p.p50_us = stats.schedule_latency.quantile(0.50);
    p.p99_us = stats.schedule_latency.quantile(0.99);
    p.p999_us = stats.schedule_latency.quantile(0.999);
  }
  return p;
}

void json_point(std::ostream& os, const RatePoint& p) {
  os << "{\"rate_per_sec\": " << exp::fmt(p.rate_per_sec, 1)
     << ", \"gap_us\": " << p.gap_us
     << ", \"hit_pct\": " << exp::fmt(p.hit_pct, 2)
     << ", \"admission_rejected\": " << p.admission_rejected
     << ", \"samples\": " << p.samples
     << ", \"p50_us\": " << exp::fmt(p.p50_us, 1)
     << ", \"p99_us\": " << exp::fmt(p.p99_us, 1)
     << ", \"p999_us\": " << exp::fmt(p.p999_us, 1) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint32_t tasks = 2000;
  std::uint32_t workers = 4;
  std::string out_path = "BENCH_STREAMING.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--tasks" && i + 1 < argc) {
      tasks = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (a == "--workers" && i + 1 < argc) {
      workers = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_streaming [--quick] [--tasks N] "
                   "[--workers M] [--out PATH]\n";
      return 2;
    }
  }
  if (quick) tasks = std::min(tasks, 400u);

  // Mean processing is ~5.5 ms (WorkloadConfig default U[1,10] ms), so m=4
  // workers saturate near 1/1375us ~ 727 tasks/s; the ladder straddles that.
  const std::vector<std::string> specs =
      quick ? std::vector<std::string>{"rt_sads", "edf_ff"}
            : std::vector<std::string>{"rt_sads", "d_cols", "edf_ff"};
  const std::vector<std::int64_t> ramp_gaps_us =
      quick ? std::vector<std::int64_t>{4000, 2000, 1300, 900, 600}
            : std::vector<std::int64_t>{5000, 3500, 2500, 1800, 1300,
                                        1000, 800, 650, 500, 400};
  const std::int64_t reference_gap_us = 2000;  // ~500/s, well under capacity
  const std::size_t max_pending = 128;

  bench::print_header(
      "Streaming service mode: latency tails and max sustainable rate",
      "open-system reading of Sec. 4.4 phase pipelining (M/G/m arrivals)",
      "latency tails grow with the offered rate; tree search (rt_sads) "
      "sustains a higher rate than greedy EDF until scheduling capacity "
      "binds");
  std::cout << "workers: " << workers << ", tasks/run: " << tasks
            << ", admission bound: " << max_pending
            << ", sustainable bar: " << exp::fmt(kSustainableHitPct, 0)
            << "% hits\n\n";

  std::vector<AlgoOutcome> outcomes;
  for (const std::string& spec : specs) {
    const auto algo = bench::make_algo(spec);
    AlgoOutcome out;
    out.spec = spec;
    out.reference =
        run_at_gap(*algo, reference_gap_us, workers, tasks, max_pending);
    std::cout << spec << " @ " << exp::fmt(out.reference.rate_per_sec, 0)
              << "/s: p50 " << exp::fmt(out.reference.p50_us / 1000.0, 2)
              << " ms, p99 " << exp::fmt(out.reference.p99_us / 1000.0, 2)
              << " ms, p999 " << exp::fmt(out.reference.p999_us / 1000.0, 2)
              << " ms (" << out.reference.samples << " samples, hit "
              << exp::fmt(out.reference.hit_pct, 1) << "%)\n";
    std::cout << "  rate/s | hit%  | adm.rej | p99 ms\n"
              << "  -------+-------+---------+-------\n";
    for (const std::int64_t gap : ramp_gaps_us) {
      const RatePoint p = run_at_gap(*algo, gap, workers, tasks, max_pending);
      std::cout << "  " << exp::fmt(p.rate_per_sec, 0) << " | "
                << exp::fmt(p.hit_pct, 1) << " | " << p.admission_rejected
                << " | " << exp::fmt(p.p99_us / 1000.0, 2) << "\n";
      if (p.hit_pct >= kSustainableHitPct) {
        out.max_sustainable_rate =
            std::max(out.max_sustainable_rate, p.rate_per_sec);
      }
      out.ramp.push_back(p);
    }
    std::cout << "  max sustainable rate: "
              << exp::fmt(out.max_sustainable_rate, 0) << "/s\n\n";
    outcomes.push_back(std::move(out));
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_streaming\",\n  \"mode\": \""
       << (quick ? "quick" : "full") << "\",\n  \"workers\": " << workers
       << ",\n  \"tasks_per_run\": " << tasks
       << ",\n  \"max_pending\": " << max_pending
       << ",\n  \"sustainable_hit_pct\": " << exp::fmt(kSustainableHitPct, 1)
       << ",\n  \"source\": \"poisson\",\n  \"algorithms\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const AlgoOutcome& out = outcomes[i];
    json << "   {\"algo\": \"" << out.spec << "\",\n    \"reference\": ";
    json_point(json, out.reference);
    json << ",\n    \"ramp\": [\n";
    for (std::size_t j = 0; j < out.ramp.size(); ++j) {
      json << "     ";
      json_point(json, out.ramp[j]);
      json << (j + 1 < out.ramp.size() ? ",\n" : "\n");
    }
    json << "    ],\n    \"max_sustainable_rate_per_sec\": "
         << exp::fmt(out.max_sustainable_rate, 1) << "}"
         << (i + 1 < outcomes.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
