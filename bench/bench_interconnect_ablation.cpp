// ABL-NET — Interconnect cost-model ablation (Sec. 2).
//
// The paper's cost model assumes cut-through (wormhole) routing: c_ij is a
// distance-independent constant C. This bench re-runs the headline cell
// under (a) several magnitudes of C and (b) a store-and-forward 2D-mesh
// model where cost grows with Manhattan distance to the nearest replica,
// to show how sensitive the comparison is to that assumption.
//
// Expected shape: larger C tightens affinity constraints and widens the
// RT-SADS lead (processor choice matters more); the mesh model behaves
// like a larger effective C, not a qualitative change.
#include <iostream>

#include "exp/table.h"
#include "bench_util.h"
#include "db/placement.h"
#include "db/transaction.h"
#include "machine/cluster.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sim/simulator.h"

namespace {

using namespace rtds;

/// run_once with an arbitrary interconnect (the exp harness fixes
/// cut-through; this bench swaps the network model).
sched::RunMetrics run_with_net(const exp::ExperimentConfig& cfg,
                               const machine::Interconnect& net,
                               const sched::PhaseAlgorithm& algo,
                               std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const db::GlobalDatabase database(cfg.database, rng);
  const db::Placement placement = db::Placement::rotation(
      cfg.database.num_subdbs, cfg.num_workers, cfg.replication_rate);
  db::TransactionWorkloadConfig txn_cfg;
  txn_cfg.num_transactions = cfg.num_transactions;
  txn_cfg.scaling_factor = cfg.scaling_factor;
  const auto txns = db::generate_transactions(database, txn_cfg, rng);
  const auto workload = db::to_tasks(txns, database, placement, txn_cfg);

  machine::Cluster cluster(cfg.num_workers, net);
  sim::Simulator simulator;
  const auto quantum = cfg.make_quantum();
  sched::PipelineConfig pipeline_cfg;
  pipeline_cfg.vertex_generation_cost = cfg.vertex_cost;
  const sched::PhasePipeline pipeline(algo, *quantum, pipeline_cfg);
  sched::SimBackend backend(cluster, simulator);
  return pipeline.run(workload, backend);
}

double mean_hit(const exp::ExperimentConfig& cfg,
                const machine::Interconnect& net,
                const sched::PhaseAlgorithm& algo) {
  RunningStats s;
  for (std::uint32_t i = 0; i < cfg.repetitions; ++i) {
    s.add(run_with_net(cfg, net, algo,
                       bench::bench_seed(cfg.base_seed, "interconnect", i))
              .hit_ratio());
  }
  return s.mean() * 100.0;
}

}  // namespace

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("ABL-NET — communication cost model ablation",
               "Sec. 2 cut-through assumption on the Figure-5 headline cell",
               "larger C widens the RT-SADS lead; mesh ~ larger effective C");

  const auto rt_sads = make_algo("rt_sads");
  const auto d_cols = make_algo("d_cols");

  exp::ExperimentConfig cfg;
  cfg.num_workers = 10;
  cfg.replication_rate = 0.3;
  cfg.scaling_factor = 1.0;
  cfg.num_transactions = 1000;
  cfg.repetitions = 10;

  exp::TextTable table({"interconnect", "RT-SADS hit%", "D-COLS hit%"});
  for (std::int64_t c_ms : {0, 1, 5, 20}) {
    const auto net =
        machine::Interconnect::cut_through(cfg.num_workers, msec(c_ms));
    table.add_row({"cut-through C=" + std::to_string(c_ms) + "ms",
                   exp::fmt(mean_hit(cfg, net, *rt_sads), 1),
                   exp::fmt(mean_hit(cfg, net, *d_cols), 1)});
  }
  for (std::int64_t hop_ms : {1, 2, 5}) {
    const auto net =
        machine::Interconnect::mesh(cfg.num_workers, msec(hop_ms));
    table.add_row({"2D mesh hop=" + std::to_string(hop_ms) + "ms",
                   exp::fmt(mean_hit(cfg, net, *rt_sads), 1),
                   exp::fmt(mean_hit(cfg, net, *d_cols), 1)});
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
