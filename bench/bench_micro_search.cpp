// MICRO — search-engine microbenchmarks (google-benchmark).
//
// Measures the primitive costs the simulated `vertex_generation_cost`
// stands in for: vertex evaluation (feasibility test + cost computation),
// full phase searches in both representations, and the greedy baselines.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "search/engine.h"
#include "sched/algorithm.h"

namespace {

using namespace rtds;
using search::Representation;
using search::SearchConfig;
using search::SearchEngine;

std::vector<tasks::Task> make_batch(std::uint32_t n, std::uint32_t m,
                                    std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<tasks::Task> batch;
  batch.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    tasks::Task t;
    t.id = i;
    t.processing = rng.uniform_duration(usec(200), msec(5));
    t.deadline = SimTime::zero() +
                 rng.uniform_duration(msec(10), msec(120));
    for (std::uint32_t k = 0; k < m; ++k) {
      if (rng.bernoulli(0.3)) t.affinity.add(k);
    }
    if (t.affinity.empty()) t.affinity.add(i % m);
    batch.push_back(t);
  }
  return batch;
}

void BM_EvaluateVertex(benchmark::State& state) {
  const std::uint32_t m = 8;
  const auto batch = make_batch(64, m, 1);
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  search::PartialSchedule ps(&batch,
                             std::vector<SimDuration>(m, SimDuration{}),
                             SimTime::zero() + msec(1), &net);
  std::uint32_t i = 0;
  for (auto _ : state) {
    auto a = ps.evaluate(i % 64, i % m);
    benchmark::DoNotOptimize(a);
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_EvaluateVertex);

void BM_PushPop(benchmark::State& state) {
  const std::uint32_t m = 8;
  const auto batch = make_batch(64, m, 2);
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  search::PartialSchedule ps(&batch,
                             std::vector<SimDuration>(m, SimDuration{}),
                             SimTime::zero() + msec(1), &net);
  for (auto _ : state) {
    if (auto a = ps.evaluate(0, 0)) {
      ps.push(*a);
      ps.pop();
    }
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PushPop);

void BM_PhaseSearch(benchmark::State& state, Representation rep) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t m = 10;
  const auto batch = make_batch(n, m, 3);
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  SearchConfig cfg;
  cfg.representation = rep;
  cfg.use_load_balance_cost = rep == Representation::kAssignmentOriented;
  const SearchEngine engine(cfg);
  std::uint64_t vertices = 0;
  for (auto _ : state) {
    const auto r = engine.run(batch,
                              std::vector<SimDuration>(m, SimDuration{}),
                              SimTime::zero() + msec(1), net, 10000);
    vertices += r.stats.vertices_generated;
    benchmark::DoNotOptimize(r.schedule.data());
  }
  state.counters["vertices/s"] = benchmark::Counter(
      double(vertices), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_PhaseSearch, assignment,
                  Representation::kAssignmentOriented)
    ->Arg(100)
    ->Arg(400);
BENCHMARK_CAPTURE(BM_PhaseSearch, sequence, Representation::kSequenceOriented)
    ->Arg(100)
    ->Arg(400);

void BM_GreedyPhase(benchmark::State& state, sched::GreedyKind kind) {
  const std::uint32_t m = 10, n = 200;
  const auto batch = make_batch(n, m, 4);
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  const sched::GreedyAlgorithm algo(kind);
  for (auto _ : state) {
    const auto r = algo.schedule_phase(
        batch, std::vector<SimDuration>(m, SimDuration{}),
        SimTime::zero() + msec(1), net, 10000);
    benchmark::DoNotOptimize(r.schedule.data());
  }
}
BENCHMARK_CAPTURE(BM_GreedyPhase, edf_best_fit,
                  sched::GreedyKind::kEdfBestFit);
BENCHMARK_CAPTURE(BM_GreedyPhase, myopic, sched::GreedyKind::kMyopic);

}  // namespace

BENCHMARK_MAIN();
