// ABL-STRAT — Candidate-list consumption strategy (Sec. 3).
//
// The paper's algorithms consume CL depth-first ("the search proceeds in a
// depth-first strategy"). This bench quantifies why, comparing depth-first
// against best-first (always expand the globally cheapest candidate) for
// the assignment-oriented representation on the Figure-5 sweep.
//
// Expected shape: the load-balancing cost CE grows with depth, so best-first
// degenerates toward breadth-first and wastes its quantum re-expanding
// shallow siblings; depth-first schedules far more tasks per phase.
#include <iostream>

#include "bench_util.h"
#include "exp/table.h"
#include "sched/algorithm.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;
  using search::SearchConfig;
  using search::SearchStrategy;

  print_header("ABL-STRAT — depth-first vs best-first candidate consumption",
               "Sec. 3 search-strategy choice on the Figure-5 sweep",
               "depth-first schedules far more under the same quantum");

  SearchConfig dfs_cfg;
  dfs_cfg.strategy = SearchStrategy::kDepthFirst;
  SearchConfig bfs_cfg;
  bfs_cfg.strategy = SearchStrategy::kBestFirst;
  const sched::TreeSearchAlgorithm dfs("RT-SADS/depth-first", dfs_cfg);
  const sched::TreeSearchAlgorithm bfs("RT-SADS/best-first", bfs_cfg);

  exp::TextTable table({"m", "depth-first hit%", "±ci", "best-first hit%",
                        "±ci"});
  for (std::uint32_t m : {2u, 6u, 10u}) {
    exp::ExperimentConfig cfg;
    cfg.num_workers = m;
    cfg.replication_rate = 0.3;
    cfg.scaling_factor = 1.0;
    cfg.num_transactions = 1000;
    cfg.repetitions = 10;
    const exp::Aggregate a = exp::run_repeated(cfg, dfs);
    const exp::Aggregate b = exp::run_repeated(cfg, bfs);
    table.add_row({std::to_string(m),
                   exp::fmt(a.hit_ratio.mean() * 100, 1),
                   exp::fmt(confidence_interval(a.hit_ratio) * 100, 1),
                   exp::fmt(b.hit_ratio.mean() * 100, 1),
                   exp::fmt(confidence_interval(b.hit_ratio) * 100, 1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
