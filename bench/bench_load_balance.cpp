// EXT-BALANCE — Load balance behind the compliance numbers.
//
// Sec. 3 predicts that a pruned/budgeted sequence-oriented search
// "results in assignment of tasks only to a fraction of the processors...
// many processors remain idle while others are heavily loaded". This bench
// measures that directly on the Figure-5 headline cell: per-worker busy
// time spread, the imbalance ratio (max-min)/max, idle workers, and the
// deadline-margin distribution of the executed tasks.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "db/placement.h"
#include "db/transaction.h"
#include "exp/analysis.h"
#include "exp/table.h"
#include "machine/cluster.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sim/simulator.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("EXT-BALANCE — worker load balance and deadline margins",
               "quantifies Sec. 3's idle-processors claim (m=10, R=30%, SF=1)",
               "RT-SADS spreads load evenly; D-COLS concentrates it");

  exp::ExperimentConfig cfg;
  cfg.num_workers = 10;
  cfg.replication_rate = 0.3;
  cfg.scaling_factor = 1.0;
  cfg.num_transactions = 1000;

  exp::TextTable table({"scheduler", "hit%", "busy mean (ms)",
                        "busy min..max (ms)", "imbalance", "idle workers",
                        "p50 margin (ms)"});
  for (const char* spec : {"rt_sads", "d_cols", "edf_bf"}) {
    const auto algo = make_algo(spec);
    Xoshiro256ss rng(bench::bench_seed(cfg.base_seed, "load-balance", 0));
    const db::GlobalDatabase database(cfg.database, rng);
    const db::Placement placement = db::Placement::rotation(
        cfg.database.num_subdbs, cfg.num_workers, cfg.replication_rate);
    db::TransactionWorkloadConfig txn_cfg;
    txn_cfg.num_transactions = cfg.num_transactions;
    txn_cfg.scaling_factor = cfg.scaling_factor;
    const auto txns = db::generate_transactions(database, txn_cfg, rng);
    const auto workload = db::to_tasks(txns, database, placement, txn_cfg);

    machine::Cluster cluster(
        cfg.num_workers,
        machine::Interconnect::cut_through(cfg.num_workers, cfg.comm_cost));
    sim::Simulator sim;
    const auto quantum = cfg.make_quantum();
    sched::PipelineConfig dc;
    dc.vertex_generation_cost = cfg.vertex_cost;
    dc.phase_overhead = cfg.phase_overhead;
    const sched::PhasePipeline pipeline(*algo, *quantum, dc);
    sched::SimBackend backend(cluster, sim);
    const sched::RunMetrics m = pipeline.run(workload, backend);

    const exp::BalanceSummary bal = exp::balance_summary(cluster);
    const Histogram margins = exp::margin_histogram(cluster.log(), 50.0);
    table.add_row(
        {algo->name(), exp::fmt(m.hit_ratio() * 100, 1),
         exp::fmt(bal.busy_ms.mean(), 1),
         exp::fmt(bal.busy_ms.min(), 1) + ".." + exp::fmt(bal.busy_ms.max(), 1),
         exp::fmt(bal.imbalance, 2), std::to_string(bal.idle_workers),
         exp::fmt(margins.quantile(0.5), 1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
