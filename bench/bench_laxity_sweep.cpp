// TAB-SF — Laxity (deadline scaling factor) sweep.
//
// Sec. 5.1 defines SF in [1, 3]: "A low value of SF signifies tight
// deadlines whereas a high value of SF signifies loose deadlines" (the
// figures call it laxity). The paper reports Figure 5 under SF=1; this
// bench fills in the rest of the grid: SF x m for both algorithms.
//
// Expected shape: compliance grows with SF for both algorithms; RT-SADS's
// scalability advantage persists at every laxity; under loose deadlines the
// gap narrows because feasibility stops being the binding constraint.
#include <iostream>

#include "bench_util.h"
#include "exp/table.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("TAB-SF — deadline compliance across laxity (SF) and m",
               "Sec. 5.1 experiment grid (R=30%, SF in {1,2,3})",
               "compliance rises with SF; RT-SADS >= D-COLS everywhere");

  const auto rt_sads = make_algo("rt_sads");
  const auto d_cols = make_algo("d_cols");

  exp::TextTable table(
      {"SF", "m", "RT-SADS hit%", "±ci", "D-COLS hit%", "±ci", "ratio"});
  for (double sf : {1.0, 2.0, 3.0}) {
    for (std::uint32_t m : {2u, 6u, 10u}) {
      exp::ExperimentConfig cfg;
      cfg.num_workers = m;
      cfg.replication_rate = 0.3;
      cfg.scaling_factor = sf;
      cfg.num_transactions = 1000;
      cfg.repetitions = 10;
      const exp::Aggregate rt = exp::run_repeated(cfg, *rt_sads);
      const exp::Aggregate dc = exp::run_repeated(cfg, *d_cols);
      const double ratio = dc.hit_ratio.mean() > 0
                               ? rt.hit_ratio.mean() / dc.hit_ratio.mean()
                               : 0.0;
      table.add_row({exp::fmt(sf, 0), std::to_string(m),
                     exp::fmt(rt.hit_ratio.mean() * 100, 1),
                     exp::fmt(confidence_interval(rt.hit_ratio) * 100, 1),
                     exp::fmt(dc.hit_ratio.mean() * 100, 1),
                     exp::fmt(confidence_interval(dc.hit_ratio) * 100, 1),
                     exp::fmt(ratio, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
