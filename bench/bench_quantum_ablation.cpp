// ABL-Q — Scheduling-time allocation ablation (Sec. 4.2).
//
// The paper's self-adjusting criterion Q_s(j) <= max(Min_Slack, Min_Load)
// against fixed quanta of several magnitudes, on the headline workload
// (m=10, R=30%, SF=1). The motivation of Sec. 4.2 predicts:
//   * very small fixed quanta waste the pipeline on phase turnover and
//     cannot optimize;
//   * very large fixed quanta violate slack (everything scheduled late or
//     proven infeasible by the pessimistic delivery bound);
//   * the self-adjusting policy tracks the sweet spot without tuning.
#include <iostream>

#include "bench_util.h"
#include "exp/table.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("ABL-Q — self-adjusting vs fixed scheduling quanta",
               "Sec. 4.2 (criterion of Fig. 3) on the Figure-5 headline cell",
               "self-adjusting ~= best fixed quantum, without tuning");

  const auto rt_sads = make_algo("rt_sads");

  exp::TextTable table({"quantum policy", "hit%", "±ci", "phases",
                        "mean Q_s (ms)", "sched time (ms)"});

  const auto run_with = [&](const exp::ExperimentConfig& cfg,
                            const std::string& name) {
    const exp::Aggregate a = exp::run_repeated(cfg, *rt_sads);
    table.add_row({name, exp::fmt(a.hit_ratio.mean() * 100, 1),
                   exp::fmt(confidence_interval(a.hit_ratio) * 100, 1),
                   exp::fmt(a.phases.mean(), 0),
                   exp::fmt(a.mean_quantum_ms.mean(), 2),
                   exp::fmt(a.sched_time_ms.mean(), 1)});
  };

  exp::ExperimentConfig base;
  base.num_workers = 10;
  base.replication_rate = 0.3;
  base.scaling_factor = 1.0;
  base.num_transactions = 1000;
  base.repetitions = 10;

  run_with(base, "self-adjusting (paper)");

  for (std::int64_t q_us : {100, 500, 2000, 10000, 50000}) {
    exp::ExperimentConfig cfg = base;
    cfg.quantum = exp::QuantumKind::kFixed;
    cfg.fixed_quantum = usec(q_us);
    run_with(cfg, "fixed " + exp::fmt(double(q_us) / 1000.0, 1) + "ms");
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
