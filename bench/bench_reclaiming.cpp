// ABL-RECLAIM — Resource reclaiming extension (the paper's ref [3]:
// Shen, Ramamritham & Stankovic, "Resource Reclaiming in Multiprocessor
// Real-Time Systems").
//
// The paper's scheduler plans with worst-case transaction costs from the
// global index file. Under first-match query semantics the actual cost of
// a transaction is usually far below that bound; a reclaiming dispatcher
// starts the next queued task as soon as the previous one really finishes.
// This bench measures how much deadline compliance that recovers, for both
// schedulers, across the Figure-5 processor sweep.
//
// Expected shape: reclaiming lifts both algorithms (more for the one that
// schedules more tasks); it never hurts, and the correction theorem still
// holds because actual <= worst case.
#include <iostream>

#include "bench_util.h"
#include "exp/table.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("ABL-RECLAIM — worst-case execution vs resource reclaiming",
               "extension: ref [3] of the paper, on the Figure-5 sweep",
               "reclaiming lifts compliance for both algorithms, never hurts");

  const auto rt_sads = make_algo("rt_sads");
  const auto d_cols = make_algo("d_cols");

  exp::TextTable table({"m", "RT-SADS wc%", "RT-SADS reclaim%",
                        "D-COLS wc%", "D-COLS reclaim%"});
  for (std::uint32_t m : {2u, 4u, 6u, 8u, 10u}) {
    exp::ExperimentConfig wc;
    wc.num_workers = m;
    wc.replication_rate = 0.3;
    wc.scaling_factor = 1.0;
    wc.num_transactions = 1000;
    wc.repetitions = 10;
    exp::ExperimentConfig rec = wc;
    rec.reclaim_actual_costs = true;
    table.add_row(
        {std::to_string(m),
         exp::fmt(exp::run_repeated(wc, *rt_sads).hit_ratio.mean() * 100, 1),
         exp::fmt(exp::run_repeated(rec, *rt_sads).hit_ratio.mean() * 100, 1),
         exp::fmt(exp::run_repeated(wc, *d_cols).hit_ratio.mean() * 100, 1),
         exp::fmt(exp::run_repeated(rec, *d_cols).hit_ratio.mean() * 100,
                  1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
