// Algorithm-portfolio tournament: every registry entrant on a grid of
// workload dials, with a who-wins-where table.
//
//   bench_tournament [--quick] [--reps N] [--transactions N] [--out PATH]
//
// Sweeps the three dials the paper's evaluation turns — machine size m,
// degree of replication R, and laxity scaling factor SF — and runs the full
// portfolio (tree-search, greedy, and partitioned members; see
// sched/registry.h) through exp::run_repeated on each cell. Per cell it
// ranks algorithms by mean deadline-hit ratio and applies the paper's
// two-tailed Welch difference-of-means protocol (0.01 level) between the
// winner and the runner-up, so "X wins this regime" is a statistical claim,
// not a point estimate. Writes the machine-readable grid to
// BENCH_TOURNAMENT.json (uploaded by the CI tournament job) so future PRs
// adding a portfolio member can diff who-wins-where against this one.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace rtds;

/// The tournament roster: one spec per distinct portfolio behavior. Canonical
/// registry specs (bench_util.h make_algo), so each column of the output can
/// be replayed verbatim via `rtds_fuzz --algo <spec>` or rtds_cli.
const std::vector<std::string>& roster() {
  static const std::vector<std::string> specs = {
      "rt_sads",                        // paper's assignment-oriented search
      "d_cols",                         // paper's sequence-oriented search
      "edf_ff",                         // greedy EDF first-fit baseline
      "edf_bf",                         // greedy EDF best-fit baseline
      "myopic?window=5",                // bounded-lookahead baseline
      "packing",                        // partitioned EDF first-fit packing
      "packing?fit=best&order=lpt",     // partitioned LPT best-fit packing
      "multicrit?sort=min_slack&fit=worst",  // multi-criteria partitioner
  };
  return specs;
}

struct Dial {
  std::uint32_t workers;
  double replication;
  double scaling_factor;
  /// Fraction of transactions widened into gangs (width <= workers/2).
  double gang_fraction{0.0};
};

struct CellOutcome {
  Dial dial;
  std::vector<exp::Aggregate> results;  ///< one per roster entry, same order
  std::size_t winner{0};
  std::size_t runner_up{0};
  WelchResult welch;
};

std::vector<Dial> make_dials(bool quick) {
  const std::vector<std::uint32_t> ms = {4, 10};
  const std::vector<double> rs =
      quick ? std::vector<double>{0.1, 0.6} : std::vector<double>{0.1, 0.3, 0.6};
  const std::vector<double> sfs =
      quick ? std::vector<double>{0.8, 1.5} : std::vector<double>{0.8, 1.0, 1.5};
  std::vector<Dial> dials;
  for (const std::uint32_t m : ms) {
    for (const double r : rs) {
      for (const double sf : sfs) dials.push_back({m, r, sf});
    }
  }
  // Gang sweep: hold (R, SF) at the evaluation's center and turn the gang
  // dial. Multi-worker jobs shrink the effective machine and punish search
  // backtracking, so this is where the partitioned baselines get their shot
  // at RT-SADS.
  const std::vector<double> gs =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.25, 0.5};
  for (const std::uint32_t m : ms) {
    for (const double g : gs) dials.push_back({m, 0.3, 1.0, g});
  }
  return dials;
}

std::string dial_name(const Dial& d) {
  std::ostringstream os;
  os << "m=" << d.workers << " R=" << exp::fmt(d.replication, 1)
     << " SF=" << exp::fmt(d.scaling_factor, 1);
  if (d.gang_fraction > 0) os << " G=" << exp::fmt(d.gang_fraction, 2);
  return os.str();
}

CellOutcome run_cell(const Dial& dial, std::uint32_t reps,
                     std::uint32_t transactions) {
  exp::ExperimentConfig config;
  config.num_workers = dial.workers;
  config.replication_rate = dial.replication;
  config.scaling_factor = dial.scaling_factor;
  config.num_transactions = transactions;
  config.repetitions = reps;
  config.gang_fraction = dial.gang_fraction;
  config.gang_max_workers = std::max(2u, dial.workers / 2);

  CellOutcome out;
  out.dial = dial;
  for (const std::string& spec : roster()) {
    const auto algo = bench::make_algo(spec);
    out.results.push_back(exp::run_repeated(config, *algo));
  }
  // Rank by mean hit ratio; ties break toward the earlier roster entry so
  // the outcome is deterministic.
  std::vector<std::size_t> order(out.results.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.results[a].hit_ratio.mean() >
                            out.results[b].hit_ratio.mean();
                   });
  out.winner = order[0];
  out.runner_up = order[1];
  out.welch = exp::compare_hit_ratios(out.results[out.winner],
                                      out.results[out.runner_up]);
  return out;
}

void json_cell(std::ostream& os, const CellOutcome& cell) {
  os << "   {\"workers\": " << cell.dial.workers
     << ", \"replication\": " << exp::fmt(cell.dial.replication, 2)
     << ", \"scaling_factor\": " << exp::fmt(cell.dial.scaling_factor, 2)
     << ", \"gang_fraction\": " << exp::fmt(cell.dial.gang_fraction, 2)
     << ",\n    \"results\": [\n";
  for (std::size_t i = 0; i < cell.results.size(); ++i) {
    const exp::Aggregate& agg = cell.results[i];
    os << "     {\"algo\": \"" << roster()[i] << "\", \"hit_pct\": "
       << exp::fmt(agg.hit_ratio.mean() * 100.0, 2) << ", \"ci99_pct\": "
       << exp::fmt(confidence_interval(agg.hit_ratio) * 100.0, 2)
       << ", \"sched_ms\": " << exp::fmt(agg.sched_time_ms.mean(), 2) << "}"
       << (i + 1 < cell.results.size() ? ",\n" : "\n");
  }
  os << "    ],\n    \"winner\": \"" << roster()[cell.winner]
     << "\", \"runner_up\": \"" << roster()[cell.runner_up]
     << "\", \"welch_p\": " << exp::fmt(cell.welch.p_value, 6)
     << ", \"significant_at_001\": "
     << (cell.welch.significant(0.01) ? "true" : "false") << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint32_t reps = 10;
  // 250 straddles the interesting boundary: small machines have slack for
  // tree search to exploit, while at m=10 the offered load makes scheduling
  // capacity bind and the cheap greedy heuristics take over. (Much higher
  // drives every cell into uniform overload; much lower saturates at 100%.)
  std::uint32_t transactions = 250;
  std::string out_path = "BENCH_TOURNAMENT.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--reps" && i + 1 < argc) {
      reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (a == "--transactions" && i + 1 < argc) {
      transactions =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_tournament [--quick] [--reps N] "
                   "[--transactions N] [--out PATH]\n";
      return 2;
    }
  }
  if (quick) {
    reps = std::min(reps, 3u);
    transactions = std::min(transactions, 200u);
  }

  bench::print_header(
      "Algorithm-portfolio tournament: who wins where",
      "evaluation dials of Sec. 5 (m, R, SF) plus a gang-fraction sweep, "
      "over the full registry portfolio",
      "search (rt_sads) wins where slack leaves room to backtrack; cheap "
      "greedy (edf_ff) takes over once scheduling capacity binds at m=10; "
      "gang-heavy cells give the partitioned packers their shot");

  const std::vector<Dial> dials = make_dials(quick);
  std::cout << "roster (" << roster().size() << " entrants):";
  for (const std::string& spec : roster()) std::cout << " " << spec;
  std::cout << "\ncells: " << dials.size() << ", reps/cell: " << reps
            << ", transactions/run: " << transactions << "\n\n";

  std::cout << "cell                  | winner                               "
               "| hit%  | runner-up                            | hit%  | "
               "p(Welch)\n"
            << "----------------------+--------------------------------------"
               "+-------+--------------------------------------+-------+"
               "---------\n";

  std::map<std::string, std::uint32_t> wins;
  std::vector<CellOutcome> cells;
  for (const Dial& dial : dials) {
    CellOutcome cell = run_cell(dial, reps, transactions);
    const std::string& won = roster()[cell.winner];
    const std::string& second = roster()[cell.runner_up];
    ++wins[won];

    const auto pad = [](const std::string& s, std::size_t w) {
      std::cout << s;
      for (std::size_t i = s.size(); i < w; ++i) std::cout << ' ';
    };
    pad(dial_name(dial), 22);
    std::cout << "| ";
    pad(won, 37);
    std::cout << "| " << exp::fmt(cell.results[cell.winner].hit_ratio.mean() *
                                      100.0, 1)
              << " | ";
    pad(second, 37);
    std::cout << "| "
              << exp::fmt(cell.results[cell.runner_up].hit_ratio.mean() *
                              100.0, 1)
              << " | " << exp::fmt(cell.welch.p_value, 4)
              << (cell.welch.significant(0.01) ? " *" : "") << "\n";
    cells.push_back(std::move(cell));
  }

  std::cout << "\nwho-wins-where ('*' above = significant at the paper's "
               "0.01 level):\n";
  for (const std::string& spec : roster()) {
    const auto it = wins.find(spec);
    std::cout << "  " << spec << ": " << (it == wins.end() ? 0 : it->second)
              << " of " << cells.size() << " cells\n";
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_tournament\",\n  \"mode\": \""
       << (quick ? "quick" : "full") << "\",\n  \"reps\": " << reps
       << ",\n  \"transactions\": " << transactions
       << ",\n  \"algorithms\": [";
  for (std::size_t i = 0; i < roster().size(); ++i) {
    json << "\"" << roster()[i] << "\""
         << (i + 1 < roster().size() ? ", " : "");
  }
  json << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    json_cell(json, cells[i]);
    json << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"wins\": {";
  bool first = true;
  for (const std::string& spec : roster()) {
    const auto it = wins.find(spec);
    json << (first ? "" : ", ") << "\"" << spec
         << "\": " << (it == wins.end() ? 0 : it->second);
    first = false;
  }
  json << "}\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
