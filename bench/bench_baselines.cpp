// ABL-BASE — Greedy baselines around the two search schedulers.
//
// Not in the paper's figures: situates RT-SADS and D-COLS against
// non-search dynamic schedulers sharing the same predictive feasibility
// test — EDF first-fit, EDF best-fit, and a Ramamritham-Stankovic-style
// myopic window scheduler (the paper cites [6] as the lineage of the
// sequence-oriented techniques).
//
// Expected shape: EDF best-fit is a strong cheap heuristic (it is close to
// RT-SADS with max_successors=1); RT-SADS's search adds value mainly under
// low replication where placement conflicts need backtracking; D-COLS
// trails everything that pays less than ~n vertices per placement.
#include <iostream>

#include "bench_util.h"
#include "exp/table.h"

int main() {
  using namespace rtds;
  using namespace rtds::bench;

  print_header("ABL-BASE — search schedulers vs greedy baselines",
               "extension of the Sec. 5 evaluation (R=30%, SF=1)",
               "RT-SADS >= EDF-best-fit >= myopic >= EDF-first-fit > D-COLS");

  const std::vector<std::unique_ptr<sched::PhaseAlgorithm>> algos = [] {
    std::vector<std::unique_ptr<sched::PhaseAlgorithm>> v;
    v.push_back(make_algo("rt_sads"));
    v.push_back(make_algo("d_cols"));
    v.push_back(make_algo("edf_bf"));
    v.push_back(make_algo("edf_ff"));
    v.push_back(make_algo("myopic"));
    return v;
  }();

  std::vector<std::string> header{"m"};
  for (const auto& a : algos) header.push_back(a->name() + " hit%");
  exp::TextTable table(header);

  for (std::uint32_t m : {2u, 4u, 6u, 8u, 10u}) {
    exp::ExperimentConfig cfg;
    cfg.num_workers = m;
    cfg.replication_rate = 0.3;
    cfg.scaling_factor = 1.0;
    cfg.num_transactions = 1000;
    cfg.repetitions = 10;
    std::vector<std::string> row{std::to_string(m)};
    for (const auto& a : algos) {
      row.push_back(
          exp::fmt(exp::run_repeated(cfg, *a).hit_ratio.mean() * 100, 1));
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
