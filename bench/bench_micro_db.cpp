// MICRO — database substrate microbenchmarks (google-benchmark).
//
// Measures the operations behind the paper's Execution_Cost estimator and
// the transaction executor: global-index probes, indexed selects, full
// sub-database scans, and transaction/task generation throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "db/database.h"
#include "db/placement.h"
#include "db/transaction.h"

namespace {

using namespace rtds;
using namespace rtds::db;

const GlobalDatabase& paper_db() {
  static Xoshiro256ss rng(7);
  static const GlobalDatabase db(DatabaseConfig{}, rng);
  return db;
}

void BM_KeyFrequencyProbe(benchmark::State& state) {
  const GlobalDatabase& db = paper_db();
  std::uint32_t off = 0;
  for (auto _ : state) {
    const AttrValue v = db.encode(off % 10, kKeyAttribute, off % 100);
    benchmark::DoNotOptimize(db.key_frequency(v));
    ++off;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_KeyFrequencyProbe);

void BM_EstimateCost(benchmark::State& state) {
  const GlobalDatabase& db = paper_db();
  Xoshiro256ss rng(9);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 512;
  const auto txns = generate_transactions(db, cfg, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.estimate_cost(txns[i % txns.size()]));
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_EstimateCost);

void BM_IndexedSelect(benchmark::State& state) {
  const GlobalDatabase& db = paper_db();
  Transaction txn;
  txn.subdb = 3;
  txn.predicates = {{kKeyAttribute, db.encode(3, kKeyAttribute, 42)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.execute(txn).matched);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_IndexedSelect);

void BM_FullScanSelect(benchmark::State& state) {
  const GlobalDatabase& db = paper_db();
  Transaction txn;
  txn.subdb = 3;
  txn.predicates = {{2u, db.encode(3, 2, 17)}, {5u, db.encode(3, 5, 3)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.execute(txn).matched);
  }
  state.SetItemsProcessed(
      std::int64_t(state.iterations()) *
      std::int64_t(paper_db().config().records_per_subdb));
}
BENCHMARK(BM_FullScanSelect);

void BM_GenerateTransactions(benchmark::State& state) {
  const GlobalDatabase& db = paper_db();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Xoshiro256ss rng(++seed);
    TransactionWorkloadConfig cfg;
    cfg.num_transactions = static_cast<std::uint32_t>(state.range(0));
    benchmark::DoNotOptimize(generate_transactions(db, cfg, rng).size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_GenerateTransactions)->Arg(1000);

void BM_TransactionsToTasks(benchmark::State& state) {
  const GlobalDatabase& db = paper_db();
  Xoshiro256ss rng(11);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 1000;
  const auto txns = generate_transactions(db, cfg, rng);
  const Placement placement = Placement::rotation(10, 10, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_tasks(txns, db, placement, cfg).size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_TransactionsToTasks);

void BM_BuildGlobalDatabase(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Xoshiro256ss rng(++seed);
    const GlobalDatabase db(DatabaseConfig{}, rng);
    benchmark::DoNotOptimize(db.num_subdbs());
  }
}
BENCHMARK(BM_BuildGlobalDatabase);

}  // namespace

BENCHMARK_MAIN();
