#include <cstdio>
#include <cstdlib>
#include "exp/experiment.h"
#include "sched/registry.h"
using namespace rtds;
using namespace rtds::exp;

static double hit(const ExperimentConfig& cfg,
                  const sched::PhaseAlgorithm& algo, uint64_t seed) {
  return run_once(cfg, algo, seed).hit_ratio() * 100;
}

int main(int argc, char** argv) {
  const std::int64_t vcost_us = argc > 1 ? atoll(argv[1]) : 1;
  const std::int64_t maxq_ms = argc > 2 ? atoll(argv[2]) : 20;
  const auto rt = sched::AlgorithmRegistry::builtin().make("rt_sads");
  const auto dc = sched::AlgorithmRegistry::builtin().make("d_cols");

  std::printf("Fig5 shape (R=30%%, SF=1, vcost=%ldus, maxQ=%ldms)\n",
              vcost_us, maxq_ms);
  std::printf("m    RT-SADS  D-COLS\n");
  for (std::uint32_t m : {2u, 4u, 6u, 8u, 10u}) {
    ExperimentConfig cfg;
    cfg.num_workers = m;
    cfg.vertex_cost = usec(vcost_us);
    cfg.max_quantum = msec(maxq_ms);
    std::printf("%-4u %6.1f%%  %6.1f%%\n", m, hit(cfg, *rt, 1),
                hit(cfg, *dc, 1));
  }

  std::printf("Fig6 shape (m=10, SF=1)\n");
  std::printf("R     RT-SADS  D-COLS\n");
  for (double r : {0.1, 0.3, 0.5, 0.7, 1.0}) {
    ExperimentConfig cfg;
    cfg.num_workers = 10;
    cfg.replication_rate = r;
    cfg.vertex_cost = usec(vcost_us);
    cfg.max_quantum = msec(maxq_ms);
    std::printf("%-5.1f %6.1f%%  %6.1f%%\n", r, hit(cfg, *rt, 1),
                hit(cfg, *dc, 1));
  }
  return 0;
}
