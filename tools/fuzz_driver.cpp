// rtds_fuzz — deterministic stress/fuzz driver (docs/FUZZING.md).
//
//   rtds_fuzz [--scenarios N] [--seed S] [--no-threaded] [--time-scale X]
//             [--shrink-budget N] [--artifact-dir DIR] [--algo SPEC]
//             [--gang] [--big-batch]
//   rtds_fuzz --replay <token>
//   rtds_fuzz --list-oracles
//   rtds_fuzz --list-algos
//
// Sweeps scenarios generate_scenario(seed, 0..N-1) through the harness.
// By default each scenario draws its algorithm from the portfolio mix;
// --algo pins every scenario to one registry spec (sched/registry.h) so a
// single portfolio member can be fuzzed in isolation. --gang forces every
// scenario gang-heavy (all tasks gangs, >= 2 workers, single shard) so a
// CI slice can hammer the multi-worker occupancy paths specifically;
// --big-batch forces every scenario into the capacity profile (one closed
// burst of 65536..200000 tasks through the wide-header search path).
// On the first oracle violation it shrinks the scenario to a minimal
// still-failing repro, prints both replay tokens, optionally writes them to
// <artifact-dir>/failing_tokens.txt (uploaded by CI), and exits 1.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sched/registry.h"
#include "testing/harness.h"
#include "testing/oracles.h"
#include "testing/scenario.h"
#include "testing/shrink.h"

namespace {

constexpr std::uint64_t kDefaultBaseSeed = 0x52AD5FEEDULL;

struct Args {
  std::uint64_t scenarios = 200;
  std::uint64_t seed = kDefaultBaseSeed;
  std::uint32_t shrink_budget = 150;
  std::string replay_token;
  std::string artifact_dir;
  std::string algo_spec;  ///< empty = each scenario's own portfolio draw
  bool gang_heavy = false;
  bool big_batch = false;
  bool list_oracles = false;
  bool list_algos = false;
  rtds::testing::HarnessOptions harness;
};

void usage(std::ostream& os) {
  os << "usage: rtds_fuzz [--scenarios N] [--seed S] [--no-threaded]\n"
        "                 [--time-scale X] [--shrink-budget N]\n"
        "                 [--artifact-dir DIR] [--algo SPEC] [--gang]\n"
        "                 [--big-batch]\n"
        "       rtds_fuzz --replay <token>\n"
        "       rtds_fuzz --list-oracles\n"
        "       rtds_fuzz --list-algos\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--scenarios") {
      const char* v = next();
      if (!v) return false;
      args.scenarios = std::strtoull(v, nullptr, 0);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--shrink-budget") {
      const char* v = next();
      if (!v) return false;
      args.shrink_budget =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (a == "--time-scale") {
      const char* v = next();
      if (!v) return false;
      args.harness.threaded_time_scale = std::strtod(v, nullptr);
    } else if (a == "--no-threaded") {
      args.harness.run_threaded = false;
    } else if (a == "--replay") {
      const char* v = next();
      if (!v) return false;
      args.replay_token = v;
    } else if (a == "--artifact-dir") {
      const char* v = next();
      if (!v) return false;
      args.artifact_dir = v;
    } else if (a == "--algo") {
      const char* v = next();
      if (!v) return false;
      args.algo_spec = v;
    } else if (a == "--gang") {
      args.gang_heavy = true;
    } else if (a == "--big-batch") {
      args.big_batch = true;
    } else if (a == "--list-oracles") {
      args.list_oracles = true;
    } else if (a == "--list-algos") {
      args.list_algos = true;
    } else if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "rtds_fuzz: unknown argument '" << a << "'\n";
      return false;
    }
  }
  return true;
}

void save_tokens(const std::string& dir, const std::string& original,
                 const std::string& minimal) {
  if (dir.empty()) return;
  std::ofstream out(dir + "/failing_tokens.txt", std::ios::app);
  if (!out) {
    std::cerr << "rtds_fuzz: cannot write to " << dir << "\n";
    return;
  }
  out << "original " << original << "\n";
  out << "minimal  " << minimal << "\n";
}

int report_failure(const rtds::testing::ScenarioResult& result,
                   const Args& args) {
  std::cerr << "\nORACLE VIOLATION\n" << result.to_string() << "\n";
  std::cerr << "\nshrinking (budget " << args.shrink_budget << " runs)...\n";
  const rtds::testing::ShrinkResult shrunk = rtds::testing::shrink(
      result.scenario, args.harness, args.shrink_budget);
  std::cerr << "minimal repro after " << shrunk.runs << " runs:\n"
            << shrunk.result.to_string() << "\n";
  std::cerr << "\nreplay with: rtds_fuzz --replay " << shrunk.result.token
            << "\n";
  save_tokens(args.artifact_dir, result.token, shrunk.result.token);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage(std::cerr);
    return 2;
  }

  if (args.list_oracles) {
    for (const std::string& name : rtds::testing::oracle_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  if (args.list_algos) {
    const auto& registry = rtds::sched::AlgorithmRegistry::builtin();
    for (const std::string& key : registry.keys()) {
      std::cout << key << "  —  " << registry.summary(key) << "\n";
    }
    return 0;
  }

  // Resolve --algo up front: a typo'd spec should fail with the registry's
  // message before the sweep starts, and pinning the CANONICAL spec keeps
  // replay tokens identical to what an unpinned run of that spec would use.
  std::string pinned_spec;
  if (!args.algo_spec.empty()) {
    const auto canonical =
        rtds::sched::AlgorithmRegistry::builtin().canonicalize(
            args.algo_spec);
    if (!canonical) {
      std::cerr << "rtds_fuzz: invalid --algo spec '" << args.algo_spec
                << "' (see --list-algos)\n";
      return 2;
    }
    pinned_spec = *canonical;
    const auto pinned =
        rtds::sched::AlgorithmRegistry::builtin().make(pinned_spec);
    std::cout << "rtds_fuzz: pinned algorithm " << pinned->name()
              << " (threads " << pinned->threads() << ")\n";
  }

  if (!args.replay_token.empty()) {
    const auto scenario = rtds::testing::decode_token(args.replay_token);
    if (!scenario) {
      std::cerr << "rtds_fuzz: malformed replay token\n";
      return 2;
    }
    const rtds::testing::ScenarioResult result =
        rtds::testing::run_scenario(*scenario, args.harness);
    std::cout << result.to_string() << "\n";
    return result.ok() ? 0 : 1;
  }

  std::uint64_t threaded_runs = 0;
  std::uint64_t sharded_runs = 0;
  std::uint64_t total_tasks = 0;
  std::uint64_t total_vertices = 0;
  const auto sweep_start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < args.scenarios; ++i) {
    rtds::testing::Scenario scenario =
        rtds::testing::generate_scenario(args.seed, i);
    if (!pinned_spec.empty()) scenario.algo_spec = pinned_spec;
    if (args.gang_heavy) {
      // Force a gang-heavy shape AFTER generation (the draw itself stays
      // untouched, so replay tokens from this slice decode normally).
      if (scenario.workers < 2) scenario.workers = 2;
      scenario.num_shards = 1;
      scenario.gang_permille = 1000;
      if (scenario.gang_max_workers < 2 ||
          scenario.gang_max_workers > scenario.workers) {
        scenario.gang_max_workers = scenario.workers;
      }
    }
    if (args.big_batch) {
      // Force the capacity profile AFTER generation, like --gang: the draw
      // itself stays untouched so replay tokens decode normally. Profile
      // randomness comes from a substream of the scenario's own seed, so a
      // given (sweep seed, index) always yields the same big-batch shape.
      rtds::Xoshiro256ss profile_rng(rtds::derive_seed(
          scenario.seed, rtds::stream_id("fuzz.big_batch"), i));
      rtds::testing::apply_big_batch_profile(scenario, profile_rng);
      if (!pinned_spec.empty()) scenario.algo_spec = pinned_spec;
    }
    const rtds::testing::ScenarioResult result =
        rtds::testing::run_scenario(scenario, args.harness);
    if (!result.ok()) {
      std::cerr << "scenario " << i << " of sweep seed 0x" << std::hex
                << args.seed << std::dec << " failed\n";
      return report_failure(result, args);
    }
    threaded_runs += result.threaded_ran ? 1 : 0;
    sharded_runs += result.shard_runs.empty() ? 0 : 1;
    total_tasks += result.sim.metrics.total_tasks;
    total_vertices += result.sim.metrics.vertices_generated;
    if ((i + 1) % 100 == 0) {
      std::cerr << "  " << (i + 1) << "/" << args.scenarios
                << " scenarios clean\n";
    }
  }
  const double sweep_secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - sweep_start)
          .count();
  std::cout << "rtds_fuzz: " << args.scenarios << " scenarios (seed 0x"
            << std::hex << args.seed << std::dec << "), " << total_tasks
            << " tasks, " << threaded_runs << " threaded runs, "
            << sharded_runs << " sharded runs — all oracles passed\n";
  std::cout << "rtds_fuzz: " << total_vertices
            << " search vertices generated, ";
  if (sweep_secs > 0) {
    std::cout << static_cast<std::uint64_t>(double(args.scenarios) /
                                            sweep_secs)
              << " scenarios/sec (" << args.scenarios << " in ";
  } else {
    std::cout << "? scenarios/sec (" << args.scenarios << " in ";
  }
  std::cout.setf(std::ios::fixed);
  std::cout.precision(2);
  std::cout << sweep_secs << "s)\n";
  std::cout.unsetf(std::ios::fixed);
  return 0;
}
