// Live deployment demo: the same RT-SADS scheduler driving real worker
// threads through mailboxes, with deadlines checked against the wall clock
// (src/runtime). Execution is scaled down 4x so the demo finishes quickly.
//
//   ./build/examples/live_runtime [num_tasks] [workers]
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "runtime/threaded_runtime.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "tasks/workload.h"

int main(int argc, char** argv) {
  using namespace rtds;

  const std::uint32_t num_tasks =
      argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 200;
  const std::uint32_t workers =
      argc > 2 ? std::uint32_t(std::atoi(argv[2])) : 4;

  tasks::WorkloadConfig wc;
  wc.num_tasks = num_tasks;
  wc.num_processors = workers;
  wc.arrival = tasks::ArrivalPattern::kPoisson;
  wc.mean_interarrival = usec(800);
  wc.processing_min = usec(500);
  wc.processing_max = msec(3);
  wc.affinity_degree = 0.4;
  wc.laxity_min = 15.0;
  wc.laxity_max = 40.0;
  Xoshiro256ss rng(11);
  const auto workload = tasks::generate_workload(wc, rng);

  const auto algorithm = sched::make_rt_sads();
  const auto quantum = sched::make_self_adjusting_quantum(usec(200), msec(10));

  runtime::RuntimeConfig cfg;
  cfg.num_workers = workers;
  cfg.comm_cost = msec(1);
  cfg.vertex_cost = usec(10);
  cfg.time_scale = 0.25;  // execute 4x faster than nominal

  std::cout << "running " << num_tasks << " tasks on " << workers
            << " worker threads (live wall-clock deadlines)...\n";
  const runtime::RuntimeReport r =
      runtime::run_threaded(*algorithm, *quantum, cfg, workload);

  std::cout << "tasks offered       : " << r.total_tasks << "\n"
            << "scheduled           : " << r.scheduled << "\n"
            << "deadline hits       : " << r.deadline_hits << "\n"
            << "missed in execution : " << r.exec_misses
            << "  (wall-clock jitter can cause a few)\n"
            << "culled              : " << r.culled << "\n"
            << "rejected            : " << r.rejected << "\n"
            << "mailbox overflows   : " << r.overflow_drops
            << "  (readmitted " << r.readmissions << ", backpressure pauses "
            << r.backpressure_waits << ")\n"
            << "hit ratio           : " << r.hit_ratio() * 100.0 << "%\n"
            << "scheduling phases   : " << r.phases << "\n"
            << "elapsed             : "
            << (r.finish_time - SimTime::zero()).millis() << " ms\n";
  const std::uint64_t accounted =
      r.deadline_hits + r.exec_misses + r.culled + r.rejected;
  std::cout << "conservation        : " << accounted << "/" << r.total_tasks
            << (accounted == r.total_tasks ? " (balanced)" : " (VIOLATED)")
            << "\n";
  return 0;
}
