// Quickstart: schedule a synthetic real-time workload with RT-SADS on a
// simulated 8-worker distributed-memory machine and print the outcome.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/rng.h"
#include "machine/cluster.h"
#include "sched/driver.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "sim/simulator.h"
#include "tasks/workload.h"

int main() {
  using namespace rtds;

  // 1. A machine: 8 workers, constant (cut-through) communication cost of
  //    2 ms for any task placed off its data.
  constexpr std::uint32_t kWorkers = 8;
  machine::Cluster cluster(
      kWorkers, machine::Interconnect::cut_through(kWorkers, msec(2)));

  // 2. A workload: 400 tasks arriving in one burst, 1-10 ms of work each,
  //    affinity with ~30% of the workers, deadlines 8x the processing time.
  tasks::WorkloadConfig wl;
  wl.num_tasks = 400;
  wl.num_processors = kWorkers;
  wl.arrival = tasks::ArrivalPattern::kBursty;
  wl.processing_min = msec(1);
  wl.processing_max = msec(10);
  wl.affinity_degree = 0.3;
  wl.laxity_min = wl.laxity_max = 8.0;
  Xoshiro256ss rng(/*seed=*/42);
  const std::vector<tasks::Task> workload = tasks::generate_workload(wl, rng);

  // 3. The scheduler: RT-SADS with the paper's self-adjusting quantum.
  const auto algorithm = sched::make_rt_sads();
  const auto quantum = sched::make_self_adjusting_quantum(
      /*min_quantum=*/usec(100), /*max_quantum=*/msec(50));

  // 4. Run the pipeline on the discrete-event simulator.
  sim::Simulator simulator;
  const sched::PhaseScheduler scheduler(*algorithm, *quantum);
  const sched::RunMetrics m = scheduler.run(workload, cluster, simulator);

  std::cout << "tasks offered        : " << m.total_tasks << "\n"
            << "scheduled            : " << m.scheduled << "\n"
            << "deadline hits        : " << m.deadline_hits << "\n"
            << "missed in execution  : " << m.exec_misses
            << "   (correction theorem: always 0)\n"
            << "culled (unreachable) : " << m.culled << "\n"
            << "hit ratio            : " << m.hit_ratio() * 100.0 << "%\n"
            << "scheduling phases    : " << m.phases << "\n"
            << "vertices generated   : " << m.vertices_generated << "\n"
            << "host scheduling time : " << m.scheduling_time.millis()
            << " ms\n"
            << "makespan             : " << double(m.finish_time.us) / 1000.0
            << " ms\n";
  return 0;
}
