// Command-line experiment driver: run any cell of the paper's evaluation
// grid (or the extensions) without recompiling.
//
//   ./build/examples/rtds_cli --algo=rt_sads --workers=10 --replication=0.3
//       --sf=1 --txns=1000 --reps=10 [--reclaim] [--quantum=fixed:5ms]
//       [--trace=trace.csv] [--gantt=gantt.csv] [--csv]
//
// --algo takes any registry spec (sched/registry.h), e.g. rt_sads, d_cols,
// d_cols?max_successors=8, edf_ff, edf_bf, myopic?window=7, packing,
// multicrit?sort=lpt&fit=next. The pre-registry aliases (rt-sads, d-cols,
// d-cols-pruned:<B>, edf-first-fit, edf-best-fit, myopic:<W>) still work.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "db/placement.h"
#include "db/transaction.h"
#include "exp/experiment.h"
#include "exp/table.h"
#include "machine/schedule_export.h"
#include "sched/registry.h"
#include "sched/trace.h"
#include "sim/simulator.h"

namespace {

using namespace rtds;

[[noreturn]] void usage(const std::string& why) {
  std::cerr << "error: " << why << "\n\n"
            << "usage: rtds_cli [--algo=NAME] [--workers=N] "
               "[--replication=R] [--sf=SF]\n"
            << "                [--txns=N] [--reps=N] [--seed=S] "
               "[--comm-ms=C] [--vertex-us=V]\n"
            << "                [--quantum=self|fixed:<ms>ms] [--reclaim]\n"
            << "                [--trace=FILE] [--gantt=FILE] [--csv]\n"
            << "algorithms (registry specs, see sched/registry.h):\n";
  for (const std::string& key : sched::AlgorithmRegistry::builtin().keys()) {
    std::cerr << "  " << key << "  —  "
              << sched::AlgorithmRegistry::builtin().summary(key) << "\n";
  }
  std::exit(2);
}

/// "--key=value" parser; returns true and fills `value` when `arg` is
/// "--key=..." (or bare "--key" with empty value).
bool match_flag(const std::string& arg, const std::string& key,
                std::string& value) {
  const std::string prefix = "--" + key;
  if (arg == prefix) {
    value.clear();
    return true;
  }
  if (arg.rfind(prefix + "=", 0) == 0) {
    value = arg.substr(prefix.size() + 1);
    return true;
  }
  return false;
}

/// Maps the pre-registry CLI aliases onto registry specs; anything else is
/// passed to the registry verbatim.
std::string resolve_alias(const std::string& spec) {
  if (spec == "rt-sads") return "rt_sads";
  if (spec == "d-cols") return "d_cols";
  if (spec == "edf-first-fit") return "edf_ff";
  if (spec == "edf-best-fit") return "edf_bf";
  if (spec.rfind("d-cols-pruned:", 0) == 0) {
    return "d_cols?max_successors=" + spec.substr(14);
  }
  if (spec.rfind("myopic:", 0) == 0) {
    return "myopic?window=" + spec.substr(7);
  }
  return spec;
}

std::unique_ptr<sched::PhaseAlgorithm> make_algorithm(
    const std::string& spec) {
  try {
    return sched::AlgorithmRegistry::builtin().make(resolve_alias(spec));
  } catch (const Error& e) {
    usage(e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo_spec = "rt_sads";
  exp::ExperimentConfig cfg;
  std::string trace_path, gantt_path;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (match_flag(arg, "algo", v)) {
      algo_spec = v;
    } else if (match_flag(arg, "workers", v)) {
      cfg.num_workers = std::uint32_t(std::atoi(v.c_str()));
    } else if (match_flag(arg, "replication", v)) {
      cfg.replication_rate = std::atof(v.c_str());
    } else if (match_flag(arg, "sf", v)) {
      cfg.scaling_factor = std::atof(v.c_str());
    } else if (match_flag(arg, "txns", v)) {
      cfg.num_transactions = std::uint32_t(std::atoi(v.c_str()));
    } else if (match_flag(arg, "reps", v)) {
      cfg.repetitions = std::uint32_t(std::atoi(v.c_str()));
    } else if (match_flag(arg, "seed", v)) {
      cfg.base_seed = std::strtoull(v.c_str(), nullptr, 0);
    } else if (match_flag(arg, "comm-ms", v)) {
      cfg.comm_cost = msec(std::atoll(v.c_str()));
    } else if (match_flag(arg, "vertex-us", v)) {
      cfg.vertex_cost = usec(std::atoll(v.c_str()));
    } else if (match_flag(arg, "reclaim", v)) {
      cfg.reclaim_actual_costs = true;
    } else if (match_flag(arg, "quantum", v)) {
      if (v == "self") {
        cfg.quantum = exp::QuantumKind::kSelfAdjusting;
      } else if (v.rfind("fixed:", 0) == 0) {
        cfg.quantum = exp::QuantumKind::kFixed;
        cfg.fixed_quantum = msec(std::atoll(v.c_str() + 6));
      } else {
        usage("bad --quantum (want self or fixed:<N>ms)");
      }
    } else if (match_flag(arg, "trace", v)) {
      trace_path = v;
    } else if (match_flag(arg, "gantt", v)) {
      gantt_path = v;
    } else if (match_flag(arg, "csv", v)) {
      csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage("help requested");
    } else {
      usage("unknown flag '" + arg + "'");
    }
  }

  const auto algorithm = make_algorithm(algo_spec);

  // Aggregate across repetitions.
  const exp::Aggregate agg = exp::run_repeated(cfg, *algorithm);
  exp::TextTable table({"metric", "mean", "±99%ci", "min", "max"});
  const auto add = [&](const std::string& name, const RunningStats& s,
                       double scale = 1.0) {
    table.add_row({name, exp::fmt(s.mean() * scale, 3),
                   exp::fmt(confidence_interval(s) * scale, 3),
                   exp::fmt(s.min() * scale, 3),
                   exp::fmt(s.max() * scale, 3)});
  };
  std::cout << "algorithm: " << algorithm->name() << " (threads "
            << algorithm->threads() << "), workers "
            << cfg.num_workers << ", R " << cfg.replication_rate << ", SF "
            << cfg.scaling_factor << ", " << cfg.num_transactions
            << " transactions, " << cfg.repetitions << " repetitions"
            << (cfg.reclaim_actual_costs ? ", reclaiming" : "") << "\n\n";
  add("hit ratio (%)", agg.hit_ratio, 100.0);
  add("scheduled ratio (%)", agg.scheduled_ratio, 100.0);
  add("exec misses", agg.exec_misses);
  add("culled", agg.culled);
  add("phases", agg.phases);
  add("dead ends", agg.dead_ends);
  add("vertices", agg.vertices);
  add("host sched time (ms)", agg.sched_time_ms);
  add("mean quantum (ms)", agg.mean_quantum_ms);
  add("makespan (ms)", agg.makespan_ms);
  table.print(std::cout);
  if (csv) {
    std::cout << "\nCSV:\n";
    table.print_csv(std::cout);
  }

  // Optional single-run artifacts (seed 0 of the protocol).
  if (!trace_path.empty() || !gantt_path.empty()) {
    Xoshiro256ss rng(derive_seed(cfg.base_seed, 0));
    const db::GlobalDatabase database(cfg.database, rng);
    const db::Placement placement = db::Placement::rotation(
        cfg.database.num_subdbs, cfg.num_workers, cfg.replication_rate);
    db::TransactionWorkloadConfig txn_cfg;
    txn_cfg.num_transactions = cfg.num_transactions;
    txn_cfg.scaling_factor = cfg.scaling_factor;
    txn_cfg.fill_actual_costs = cfg.reclaim_actual_costs;
    const auto txns = db::generate_transactions(database, txn_cfg, rng);
    const auto workload = db::to_tasks(txns, database, placement, txn_cfg);

    machine::Cluster cluster(
        cfg.num_workers,
        machine::Interconnect::cut_through(cfg.num_workers, cfg.comm_cost),
        cfg.reclaim_actual_costs ? machine::ReclaimMode::kReclaim
                                 : machine::ReclaimMode::kWorstCase);
    sim::Simulator sim;
    const auto quantum = cfg.make_quantum();
    sched::DriverConfig driver_cfg;
    driver_cfg.vertex_generation_cost = cfg.vertex_cost;
    driver_cfg.phase_overhead = cfg.phase_overhead;
    sched::PhaseTraceRecorder recorder;
    const sched::PhaseScheduler scheduler(*algorithm, *quantum, driver_cfg);
    scheduler.run(workload, cluster, sim, &recorder);

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      recorder.write_csv(out);
      std::cout << "\nwrote phase trace to " << trace_path << " ("
                << recorder.records().size() << " phases)\n";
    }
    if (!gantt_path.empty()) {
      std::ofstream out(gantt_path);
      machine::write_completion_csv(cluster, out);
      std::cout << "wrote completion log to " << gantt_path << " ("
                << cluster.log().size() << " tasks)\n";
    }
  }
  return 0;
}
