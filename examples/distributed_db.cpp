// The paper's application (Sec. 5): real-time transaction scheduling over a
// partitioned, replicated, in-memory relational database.
//
// Builds the 10x1000x10 database, generates a burst of transactions with
// proportional deadlines, schedules them with RT-SADS and with D-COLS on a
// simulated 10-worker machine, prints the comparison, and then actually
// executes a few transactions against the database to show the query layer.
//
//   ./build/examples/distributed_db [num_transactions] [replication_pct]
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "db/placement.h"
#include "db/transaction.h"
#include "exp/table.h"
#include "machine/cluster.h"
#include "sched/driver.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace rtds;

  const std::uint32_t num_txns =
      argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 1000;
  const double replication =
      argc > 2 ? std::atof(argv[2]) / 100.0 : 0.3;
  constexpr std::uint32_t kWorkers = 10;

  // --- database & workload --------------------------------------------------
  Xoshiro256ss rng(2026);
  db::DatabaseConfig db_cfg;  // paper defaults: 10 sub-dbs x 1000 x 10 attrs
  const db::GlobalDatabase database(db_cfg, rng);
  const db::Placement placement =
      db::Placement::rotation(db_cfg.num_subdbs, kWorkers, replication);

  db::TransactionWorkloadConfig txn_cfg;
  txn_cfg.num_transactions = num_txns;
  txn_cfg.scaling_factor = 1.0;  // tight deadlines
  const auto txns = db::generate_transactions(database, txn_cfg, rng);
  const auto workload = db::to_tasks(txns, database, placement, txn_cfg);

  std::cout << "database: " << db_cfg.num_subdbs << " sub-databases x "
            << db_cfg.records_per_subdb << " records x "
            << db_cfg.num_attributes << " attributes, replication "
            << replication * 100 << "% (" << placement.copies()
            << " copies each)\n"
            << "workload: " << num_txns
            << " read-only transactions, bursty arrival, deadlines = SF*10*"
               "estimated cost\n\n";

  // --- run both schedulers --------------------------------------------------
  exp::TextTable table({"scheduler", "hit%", "scheduled", "culled", "phases",
                        "vertices", "host time (ms)"});
  for (const auto& factory : {sched::make_rt_sads, sched::make_d_cols}) {
    const auto algo = factory();
    machine::Cluster cluster(
        kWorkers, machine::Interconnect::cut_through(kWorkers, msec(5)));
    sim::Simulator sim;
    const auto quantum =
        sched::make_self_adjusting_quantum(usec(100), msec(20));
    sched::DriverConfig driver_cfg;
    driver_cfg.vertex_generation_cost = usec(2);
    const sched::PhaseScheduler scheduler(*algo, *quantum, driver_cfg);
    const sched::RunMetrics m = scheduler.run(workload, cluster, sim);
    table.add_row({algo->name(), exp::fmt(m.hit_ratio() * 100, 1),
                   std::to_string(m.scheduled), std::to_string(m.culled),
                   std::to_string(m.phases),
                   std::to_string(m.vertices_generated),
                   exp::fmt(m.scheduling_time.millis(), 1)});
  }
  table.print(std::cout);

  // --- run a few transactions for real ---------------------------------------
  std::cout << "\nsample transaction executions (ground truth the cost "
               "estimator bounds):\n";
  for (std::uint32_t i = 0; i < 5 && i < txns.size(); ++i) {
    const db::Transaction& q = txns[i];
    const db::QueryResult r = database.execute(q);
    std::cout << "  txn " << q.id << ": sub-db " << q.subdb << ", "
              << q.predicates.size() << " predicate(s), "
              << (q.references_key() ? "indexed" : "full scan")
              << " -> checked " << r.checked << " tuples, matched "
              << r.matched << " (estimated worst case "
              << database.estimate_cost(q) / db_cfg.check_cost
              << " checks)\n";
  }
  return 0;
}
