// Walkthrough of the self-adjusting scheduling-time criterion (Sec. 4.2).
//
// Composes the library's pieces by hand — Batch, Cluster, SearchEngine,
// SelfAdjustingQuantum — instead of using PhaseScheduler, and prints a
// per-phase trace: Min_Slack, Min_Load, the allocated Q_s(j), the vertex
// budget it buys, and what each phase achieved. Watch the quantum shrink
// when slack gets tight or workers go idle, and stretch when the workers
// are loaded anyway (Fig. 3's motivation).
#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "machine/cluster.h"
#include "search/engine.h"
#include "sched/quantum.h"
#include "tasks/batch.h"
#include "tasks/workload.h"

int main() {
  using namespace rtds;

  constexpr std::uint32_t kWorkers = 4;
  const SimDuration kVertexCost = usec(5);
  const SimDuration kPhaseOverhead = usec(50);

  machine::Cluster cluster(
      kWorkers, machine::Interconnect::cut_through(kWorkers, msec(2)));

  // Two waves of tasks: a tight burst at t=0 and a loose burst at t=40ms.
  Xoshiro256ss rng(7);
  tasks::WorkloadConfig tight;
  tight.num_tasks = 40;
  tight.num_processors = kWorkers;
  tight.processing_min = msec(1);
  tight.processing_max = msec(4);
  tight.laxity_min = tight.laxity_max = 4.0;
  tight.affinity_degree = 0.5;
  auto wave1 = tasks::generate_workload(tight, rng);

  tasks::WorkloadConfig loose = tight;
  loose.num_tasks = 40;
  loose.start = SimTime::zero() + msec(40);
  loose.laxity_min = loose.laxity_max = 30.0;
  loose.first_id = 1000;
  auto wave2 = tasks::generate_workload(loose, rng);

  std::vector<tasks::Task> all = wave1;
  all.insert(all.end(), wave2.begin(), wave2.end());

  const sched::SelfAdjustingQuantum quantum(usec(200), msec(15));
  const search::SearchEngine engine(search::SearchConfig{});

  tasks::Batch batch;
  std::size_t cursor = 0;
  SimTime t = SimTime::zero();
  int phase = 0;

  std::cout << "phase     t(ms)  batch  MinSlack(ms)  MinLoad(ms)  Q_s(ms)  "
               "budget  placed  note\n";
  while (true) {
    std::vector<tasks::Task> arrived;
    while (cursor < all.size() && all[cursor].arrival <= t) {
      arrived.push_back(all[cursor++]);
    }
    batch.merge_arrivals(arrived);
    batch.cull_missed(t);
    if (batch.empty()) {
      if (cursor >= all.size()) break;
      t = all[cursor].arrival;
      continue;
    }

    const SimDuration min_slack = batch.min_slack(t);
    const SimDuration min_load = cluster.min_load(t);
    SimDuration q = quantum.allocate(min_slack, min_load);
    q = max_duration(q, kPhaseOverhead + kVertexCost);
    const auto budget =
        static_cast<std::uint64_t>((q - kPhaseOverhead) / kVertexCost);

    std::vector<SimDuration> base(kWorkers);
    for (std::uint32_t k = 0; k < kWorkers; ++k) {
      const SimDuration load = cluster.load(k, t);
      base[k] = load <= q ? SimDuration::zero() : load - q;
    }
    const auto result = engine.run(batch.tasks(), base, t + q,
                                   cluster.interconnect(), budget);

    const SimTime end =
        t + kVertexCost * std::int64_t(result.stats.vertices_generated) +
        kPhaseOverhead;
    std::vector<machine::ScheduledAssignment> delivery;
    std::unordered_set<tasks::TaskId> ids;
    for (const auto& a : result.schedule) {
      delivery.push_back({batch.tasks()[a.task_index], a.worker});
      ids.insert(batch.tasks()[a.task_index].id);
    }
    cluster.deliver(delivery, end);
    batch.remove_scheduled(ids);

    std::cout << std::setw(5) << phase++ << std::setw(10) << std::fixed
              << std::setprecision(2) << double(t.us) / 1000.0
              << std::setw(7) << batch.size() + delivery.size()
              << std::setw(13) << min_slack.millis() << std::setw(13)
              << min_load.millis() << std::setw(9) << q.millis()
              << std::setw(8) << budget << std::setw(8) << delivery.size()
              << "  "
              << (result.stats.dead_end          ? "dead-end"
                  : result.stats.reached_leaf    ? "complete"
                  : result.stats.budget_exhausted ? "budget out"
                                                  : "")
              << "\n";
    t = end;
  }

  const auto& stats = cluster.stats();
  std::cout << "\nexecuted " << stats.executed << " tasks, "
            << stats.deadline_hits << " met their deadline, "
            << stats.deadline_misses
            << " missed during execution (theorem: must be 0)\n";
  return 0;
}
